//! Concrete configurations: assignments of values to named parameters.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::param::ParamValue;

/// A concrete assignment of values to parameters.
///
/// Values are stored in a sorted map so that equal configurations have a
/// canonical representation (useful for hashing/deduplication and for
/// stable test output).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Configuration {
    values: BTreeMap<String, ParamValue>,
}

impl Configuration {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous assignment.
    pub fn set(&mut self, name: &str, value: impl Into<ParamValue>) -> &mut Self {
        self.values.insert(name.to_owned(), value.into());
        self
    }

    /// Builder-style [`set`](Self::set).
    #[must_use]
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Returns the value assigned to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Integer value of `name`; panics message points at the parameter.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is absent or not an integer. Use
    /// [`get`](Self::get) for fallible access.
    pub fn int(&self, name: &str) -> i64 {
        self.values
            .get(name)
            .and_then(ParamValue::as_int)
            .unwrap_or_else(|| panic!("configuration missing int parameter `{name}`"))
    }

    /// Float value of `name` (integers widen to `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the parameter is absent or not numeric.
    pub fn float(&self, name: &str) -> f64 {
        self.values
            .get(name)
            .and_then(ParamValue::as_float)
            .unwrap_or_else(|| panic!("configuration missing float parameter `{name}`"))
    }

    /// Boolean value of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is absent or not a boolean.
    pub fn bool(&self, name: &str) -> bool {
        self.values
            .get(name)
            .and_then(ParamValue::as_bool)
            .unwrap_or_else(|| panic!("configuration missing bool parameter `{name}`"))
    }

    /// Categorical value of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is absent or not categorical.
    pub fn str(&self, name: &str) -> &str {
        self.values
            .get(name)
            .and_then(ParamValue::as_str)
            .unwrap_or_else(|| panic!("configuration missing categorical parameter `{name}`"))
    }

    /// Whether the configuration assigns a value to `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Number of assigned parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`; `other`'s values win on conflict.
    pub fn merge(&mut self, other: &Configuration) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), v.clone());
        }
    }

    /// Returns a copy restricted to parameters whose name passes `keep`.
    #[must_use]
    pub fn filtered(&self, mut keep: impl FnMut(&str) -> bool) -> Configuration {
        Configuration {
            values: self
                .values
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (k, v) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, ParamValue)> for Configuration {
    fn from_iter<I: IntoIterator<Item = (String, ParamValue)>>(iter: I) -> Self {
        Configuration {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, ParamValue)> for Configuration {
    fn extend<I: IntoIterator<Item = (String, ParamValue)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let cfg = Configuration::new()
            .with("a", 3i64)
            .with("b", 0.5)
            .with("c", true)
            .with("d", "kryo");
        assert_eq!(cfg.int("a"), 3);
        assert_eq!(cfg.float("b"), 0.5);
        assert!(cfg.bool("c"));
        assert_eq!(cfg.str("d"), "kryo");
        assert_eq!(cfg.len(), 4);
    }

    #[test]
    fn int_widens_to_float() {
        let cfg = Configuration::new().with("n", 4i64);
        assert_eq!(cfg.float("n"), 4.0);
    }

    #[test]
    #[should_panic(expected = "missing int parameter")]
    fn missing_param_panics_with_name() {
        Configuration::new().int("nope");
    }

    #[test]
    fn merge_overwrites() {
        let mut a = Configuration::new().with("x", 1i64).with("y", 2i64);
        let b = Configuration::new().with("y", 9i64).with("z", 3i64);
        a.merge(&b);
        assert_eq!(a.int("y"), 9);
        assert_eq!(a.int("z"), 3);
        assert_eq!(a.int("x"), 1);
    }

    #[test]
    fn filtered_keeps_subset() {
        let cfg = Configuration::new()
            .with("spark.a", 1i64)
            .with("cloud.b", 2i64);
        let only_spark = cfg.filtered(|k| k.starts_with("spark."));
        assert!(only_spark.contains("spark.a"));
        assert!(!only_spark.contains("cloud.b"));
    }

    #[test]
    fn display_is_canonical() {
        let cfg = Configuration::new().with("b", 2i64).with("a", 1i64);
        assert_eq!(cfg.to_string(), "{a=1, b=2}");
    }

    #[test]
    fn equality_is_order_independent() {
        let a = Configuration::new().with("x", 1i64).with("y", 2i64);
        let b = Configuration::new().with("y", 2i64).with("x", 1i64);
        assert_eq!(a, b);
    }
}
