//! Parameter spaces: ordered parameter definitions plus constraints.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::config::Configuration;
use crate::error::ConfigError;
use crate::param::{ParamDef, ParamKind, ParamValue};

type ConstraintFn = dyn Fn(&Configuration) -> bool + Send + Sync;

/// A named cross-parameter constraint.
///
/// Constraints express relationships a single [`ParamDef`] cannot, e.g.
/// "speculation quantile only matters when speculation is on" or
/// "executors × cores must not exceed the cluster's virtual CPUs".
#[derive(Clone)]
pub struct Constraint {
    name: String,
    check: Arc<ConstraintFn>,
}

impl Constraint {
    /// Creates a constraint from a name and a predicate.
    pub fn new(name: &str, check: impl Fn(&Configuration) -> bool + Send + Sync + 'static) -> Self {
        Constraint {
            name: name.to_owned(),
            check: Arc::new(check),
        }
    }

    /// The constraint's name (used in error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `cfg` satisfies the constraint.
    pub fn holds(&self, cfg: &Configuration) -> bool {
        (self.check)(cfg)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Constraint")
            .field("name", &self.name)
            .finish()
    }
}

/// An ordered collection of parameter definitions with constraints.
///
/// The order of parameters is significant: it fixes the dimension order
/// of the feature-vector encoding (see [`crate::encode`]).
///
/// # Example
///
/// ```
/// use confspace::{ParamDef, ParamSpace};
///
/// let space = ParamSpace::new()
///     .with(ParamDef::int("workers", 1, 16, 2, "executor count"))
///     .with(ParamDef::boolean("compress", true, "shuffle compression"));
/// let defaults = space.default_configuration();
/// assert_eq!(defaults.int("workers"), 2);
/// assert!(space.validate(&defaults).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
    index: HashMap<String, usize>,
    constraints: Vec<Constraint>,
}

impl ParamSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter definition.
    ///
    /// # Panics
    ///
    /// Panics if a parameter with the same name already exists.
    pub fn add(&mut self, def: ParamDef) -> &mut Self {
        assert!(
            !self.index.contains_key(&def.name),
            "duplicate parameter `{}`",
            def.name
        );
        self.index.insert(def.name.clone(), self.params.len());
        self.params.push(def);
        self
    }

    /// Builder-style [`add`](Self::add).
    #[must_use]
    pub fn with(mut self, def: ParamDef) -> Self {
        self.add(def);
        self
    }

    /// Adds a cross-parameter constraint.
    pub fn add_constraint(&mut self, c: Constraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Builder-style [`add_constraint`](Self::add_constraint).
    #[must_use]
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.add_constraint(c);
        self
    }

    /// Number of parameters (also the encoded dimension count).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameter definitions, in encoding order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// The constraints on the space.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Looks up a parameter definition by name.
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.index.get(name).map(|&i| &self.params[i])
    }

    /// Index of a parameter in encoding order.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The configuration assigning every parameter its default value.
    pub fn default_configuration(&self) -> Configuration {
        self.params
            .iter()
            .map(|p| (p.name.clone(), p.default.clone()))
            .collect()
    }

    /// Validates that `cfg` assigns an admissible value to every
    /// parameter and satisfies all constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: [`ConfigError::MissingParam`],
    /// a per-parameter range/type error, [`ConfigError::UnknownParam`]
    /// for extraneous assignments, or
    /// [`ConfigError::ConstraintViolated`].
    pub fn validate(&self, cfg: &Configuration) -> Result<(), ConfigError> {
        for p in &self.params {
            match cfg.get(&p.name) {
                None => return Err(ConfigError::MissingParam(p.name.clone())),
                Some(v) => p.check(v)?,
            }
        }
        for (name, _) in cfg.iter() {
            if !self.index.contains_key(name) {
                return Err(ConfigError::UnknownParam(name.to_owned()));
            }
        }
        for c in &self.constraints {
            if !c.holds(cfg) {
                return Err(ConfigError::ConstraintViolated(c.name.clone()));
            }
        }
        Ok(())
    }

    /// Clamps every out-of-range value in `cfg` to the nearest admissible
    /// value, leaving valid values untouched. Unknown parameters are
    /// dropped; missing ones are filled with defaults. Constraints are
    /// *not* repaired (callers resample instead).
    #[must_use]
    pub fn clamp(&self, cfg: &Configuration) -> Configuration {
        let mut out = Configuration::new();
        for p in &self.params {
            let v = match cfg.get(&p.name) {
                None => p.default.clone(),
                Some(v) => clamp_value(p, v),
            };
            out.set(&p.name, v);
        }
        out
    }

    /// Merges another space's parameters and constraints into this one.
    /// Used to form the *joint* cloud + DISC space (§I of the paper).
    ///
    /// # Panics
    ///
    /// Panics on duplicate parameter names.
    #[must_use]
    pub fn union(mut self, other: &ParamSpace) -> ParamSpace {
        for p in &other.params {
            self.add(p.clone());
        }
        for c in &other.constraints {
            self.add_constraint(c.clone());
        }
        self
    }
}

fn clamp_value(p: &ParamDef, v: &ParamValue) -> ParamValue {
    match (&p.kind, v) {
        (ParamKind::Int { lo, hi, step }, ParamValue::Int(x)) => {
            let x = (*x).clamp(*lo, *hi);
            let snapped = lo + ((x - lo) / step) * step;
            ParamValue::Int(snapped)
        }
        (ParamKind::Float { lo, hi, .. }, ParamValue::Float(x)) => {
            if x.is_finite() {
                ParamValue::Float(x.clamp(*lo, *hi))
            } else {
                p.default.clone()
            }
        }
        (ParamKind::Bool, ParamValue::Bool(_)) => v.clone(),
        (ParamKind::Categorical { choices }, ParamValue::Str(s)) => {
            if choices.iter().any(|c| c == s) {
                v.clone()
            } else {
                p.default.clone()
            }
        }
        _ => p.default.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ParamSpace {
        ParamSpace::new()
            .with(ParamDef::int("n", 1, 8, 2, "count"))
            .with(ParamDef::float("f", 0.0, 1.0, 0.5, "fraction"))
            .with(ParamDef::boolean("b", false, "switch"))
            .with(ParamDef::categorical("c", &["x", "y"], "x", "choice"))
    }

    #[test]
    fn default_configuration_is_valid() {
        let s = small_space();
        let cfg = s.default_configuration();
        assert!(s.validate(&cfg).is_ok());
        assert_eq!(cfg.len(), 4);
    }

    #[test]
    fn validate_detects_missing_and_unknown() {
        let s = small_space();
        let mut cfg = s.default_configuration();
        let partial = cfg.filtered(|k| k != "n");
        assert!(matches!(
            s.validate(&partial),
            Err(ConfigError::MissingParam(p)) if p == "n"
        ));
        cfg.set("zzz", 1i64);
        assert!(matches!(
            s.validate(&cfg),
            Err(ConfigError::UnknownParam(p)) if p == "zzz"
        ));
    }

    #[test]
    fn constraint_is_enforced() {
        let s = small_space().with_constraint(Constraint::new("n<=4 when b", |c| {
            !c.bool("b") || c.int("n") <= 4
        }));
        let cfg = s.default_configuration().with("b", true).with("n", 8i64);
        assert!(matches!(
            s.validate(&cfg),
            Err(ConfigError::ConstraintViolated(_))
        ));
        let ok = s.default_configuration().with("b", true).with("n", 3i64);
        assert!(s.validate(&ok).is_ok());
    }

    #[test]
    fn clamp_snaps_to_range() {
        let s = small_space();
        let cfg = Configuration::new()
            .with("n", 99i64)
            .with("f", -3.0)
            .with("b", true)
            .with("c", "nope")
            .with("junk", 1i64);
        let fixed = s.clamp(&cfg);
        assert!(s.validate(&fixed).is_ok());
        assert_eq!(fixed.int("n"), 8);
        assert_eq!(fixed.float("f"), 0.0);
        assert_eq!(fixed.str("c"), "x");
        assert!(!fixed.contains("junk"));
    }

    #[test]
    fn clamp_respects_step() {
        let s = ParamSpace::new().with(ParamDef::int_step("m", 0, 100, 25, 0, "stepped"));
        let fixed = s.clamp(&Configuration::new().with("m", 60i64));
        assert_eq!(fixed.int("m"), 50);
    }

    #[test]
    fn union_concatenates() {
        let a = ParamSpace::new().with(ParamDef::int("a", 0, 1, 0, ""));
        let b = ParamSpace::new().with(ParamDef::int("b", 0, 1, 0, ""));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.index_of("a"), Some(0));
        assert_eq!(u.index_of("b"), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_param_panics() {
        let _ = ParamSpace::new()
            .with(ParamDef::int("a", 0, 1, 0, ""))
            .with(ParamDef::int("a", 0, 1, 0, ""));
    }
}
