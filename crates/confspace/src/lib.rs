//! Typed configuration parameter spaces for DISC-system and cloud tuning.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`ParamDef`] / [`ParamKind`] — typed definitions of a single tunable
//!   parameter (integer range, continuous range, boolean, categorical);
//! * [`ParamSpace`] — an ordered collection of parameter definitions with
//!   optional cross-parameter constraints;
//! * [`Configuration`] — a concrete assignment of values to parameters;
//! * [`spark::spark_space`] and [`cloud::cloud_space`] — the parameter
//!   catalogs used throughout the paper reproduction (≈26 Spark parameters
//!   mirroring `spark.*` knobs, and the cloud-layer instance
//!   family/size/count choice);
//! * samplers ([`sample`]) — uniform, Latin hypercube and
//!   divide-and-diverge sampling, neighbourhood moves, and genetic
//!   operators over configurations;
//! * an encoder ([`encode`]) mapping configurations to normalized
//!   `Vec<f64>` feature vectors (and back) for the surrogate models.
//!
//! # Example
//!
//! ```
//! use confspace::{spark::spark_space, sample::UniformSampler, Sampler};
//! use rand::SeedableRng;
//!
//! let space = spark_space();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let cfg = UniformSampler.sample(&space, &mut rng);
//! assert!(space.validate(&cfg).is_ok());
//! let v = space.encode(&cfg);
//! let cfg2 = space.decode(&v);
//! assert_eq!(cfg, cfg2);
//! ```

pub mod cloud;
pub mod config;
pub mod encode;
pub mod error;
pub mod param;
pub mod sample;
pub mod space;
pub mod spark;

pub use config::Configuration;
pub use error::ConfigError;
pub use param::{ParamDef, ParamKind, ParamValue};
pub use sample::{
    crossover, mutate, neighbor, DivideAndDiverge, LatinHypercube, Sampler, UniformSampler,
};
pub use space::{Constraint, ParamSpace};
