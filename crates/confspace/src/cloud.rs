//! The cloud configuration-parameter catalog.
//!
//! Stage 1 of the paper's Fig. 1 pipeline chooses the virtual cluster:
//! instance *family* (resource ratio), instance *size* (scale-up) and
//! *node count* (scale-out). The concrete resource numbers and prices
//! behind each choice live in `simcluster::catalog`.

use crate::param::ParamDef;
use crate::space::{Constraint, ParamSpace};

/// Canonical names of the cloud parameters.
pub mod names {
    /// Instance family: general (m5), compute (c5), memory (r5),
    /// storage-dense (h1), io (i3).
    pub const INSTANCE_FAMILY: &str = "cloud.instance.family";
    /// Instance size within the family.
    pub const INSTANCE_SIZE: &str = "cloud.instance.size";
    /// Number of worker nodes.
    pub const NODE_COUNT: &str = "cloud.node.count";
}

/// Instance families available in the simulated catalog.
pub const FAMILIES: [&str; 5] = ["m5", "c5", "r5", "h1", "i3"];

/// Instance sizes available in the simulated catalog.
pub const SIZES: [&str; 4] = ["large", "xlarge", "2xlarge", "4xlarge"];

/// Builds the cloud parameter space.
///
/// The default mirrors the paper's Table I testbed: 4 × h1.4xlarge.
pub fn cloud_space() -> ParamSpace {
    use names::*;
    ParamSpace::new()
        .with(ParamDef::categorical(
            INSTANCE_FAMILY,
            &FAMILIES,
            "h1",
            "instance family (resource ratio)",
        ))
        .with(ParamDef::categorical(
            INSTANCE_SIZE,
            &SIZES,
            "4xlarge",
            "instance size within the family",
        ))
        .with(ParamDef::int(
            NODE_COUNT,
            2,
            20,
            4,
            "number of worker nodes",
        ))
        .with_constraint(Constraint::new("h1 has no `large` size", |c| {
            !(c.str(INSTANCE_FAMILY) == "h1" && c.str(INSTANCE_SIZE) == "large")
        }))
}

/// Builds the *joint* cloud + DISC space (§I: optimal choices for cloud
/// and DISC parameters are interdependent).
pub fn joint_space() -> ParamSpace {
    cloud_space().union(&crate::spark::spark_space())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{Sampler, UniformSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_the_paper_testbed() {
        let s = cloud_space();
        let d = s.default_configuration();
        assert_eq!(d.str(names::INSTANCE_FAMILY), "h1");
        assert_eq!(d.str(names::INSTANCE_SIZE), "4xlarge");
        assert_eq!(d.int(names::NODE_COUNT), 4);
        assert!(s.validate(&d).is_ok());
    }

    #[test]
    fn h1_large_is_rejected() {
        let s = cloud_space();
        let bad = s
            .default_configuration()
            .with(names::INSTANCE_SIZE, "large");
        assert!(s.validate(&bad).is_err());
    }

    #[test]
    fn joint_space_has_both_layers() {
        let j = joint_space();
        assert_eq!(j.len(), 3 + 26);
        assert!(j.param(names::NODE_COUNT).is_some());
        assert!(j.param(crate::spark::names::EXECUTOR_CORES).is_some());
    }

    #[test]
    fn samples_respect_family_size_constraint() {
        let s = cloud_space();
        let mut rng = StdRng::seed_from_u64(2);
        for cfg in UniformSampler.sample_n(&s, 200, &mut rng) {
            assert!(
                !(cfg.str(names::INSTANCE_FAMILY) == "h1"
                    && cfg.str(names::INSTANCE_SIZE) == "large")
            );
        }
    }
}
