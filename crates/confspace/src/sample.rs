//! Sampling strategies and search operators over parameter spaces.
//!
//! All samplers respect the space's constraints by rejection: a sample
//! violating a constraint is re-drawn (up to a bounded number of tries,
//! after which the space's default configuration is returned — spaces in
//! this workspace have mild constraints, so this is unreachable in
//! practice).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::Configuration;
use crate::param::{ParamDef, ParamKind, ParamValue};
use crate::space::ParamSpace;

/// Maximum rejection-sampling attempts before falling back to defaults.
const MAX_REJECTS: usize = 256;

/// A strategy producing configurations from a space.
pub trait Sampler {
    /// Draws one configuration.
    fn sample<R: Rng + ?Sized>(&self, space: &ParamSpace, rng: &mut R) -> Configuration;

    /// Draws `n` configurations. Implementations may coordinate the draws
    /// (e.g. Latin-hypercube stratification).
    fn sample_n<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        n: usize,
        rng: &mut R,
    ) -> Vec<Configuration> {
        (0..n).map(|_| self.sample(space, rng)).collect()
    }
}

/// Independent uniform sampling of every parameter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformSampler;

impl Sampler for UniformSampler {
    fn sample<R: Rng + ?Sized>(&self, space: &ParamSpace, rng: &mut R) -> Configuration {
        for _ in 0..MAX_REJECTS {
            let cfg: Configuration = space
                .params()
                .iter()
                .map(|p| (p.name.clone(), sample_value(p, rng)))
                .collect();
            if space.validate(&cfg).is_ok() {
                return cfg;
            }
        }
        space.default_configuration()
    }
}

/// Latin-hypercube sampling: for a batch of `n` draws, each dimension is
/// divided into `n` strata and each stratum is used exactly once, giving
/// much better space coverage than i.i.d. uniform draws for the same
/// budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatinHypercube;

impl Sampler for LatinHypercube {
    fn sample<R: Rng + ?Sized>(&self, space: &ParamSpace, rng: &mut R) -> Configuration {
        UniformSampler.sample(space, rng)
    }

    fn sample_n<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        n: usize,
        rng: &mut R,
    ) -> Vec<Configuration> {
        if n == 0 {
            return Vec::new();
        }
        let d = space.len();
        // One stratum permutation per dimension.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut p: Vec<usize> = (0..n).collect();
            p.shuffle(rng);
            perms.push(p);
        }
        let mut out = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // `i` indexes every perm column
        for i in 0..n {
            let v: Vec<f64> = (0..d)
                .map(|j| {
                    let stratum = perms[j][i] as f64;
                    (stratum + rng.gen::<f64>()) / n as f64
                })
                .collect();
            let cfg = space.decode(&v);
            if space.validate(&cfg).is_ok() {
                out.push(cfg);
            } else {
                out.push(UniformSampler.sample(space, rng));
            }
        }
        out
    }
}

/// BestConfig's *divide-and-diverge* sampling (Zhu et al., SoCC'17).
///
/// Each round divides every dimension into `k` subranges and draws `k`
/// samples such that each subrange of each dimension is covered exactly
/// once per round (a Latin-hypercube round); successive rounds re-draw
/// the permutations ("diverge") so that repeated rounds cover different
/// stratum combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivideAndDiverge {
    /// Number of subranges (and samples) per round.
    pub k: usize,
}

impl DivideAndDiverge {
    /// Creates the sampler with `k` subranges per round.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "divide-and-diverge needs k >= 1");
        DivideAndDiverge { k }
    }

    /// Draws `rounds * k` samples, each round a fresh stratified cover.
    pub fn sample_rounds<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        rounds: usize,
        rng: &mut R,
    ) -> Vec<Configuration> {
        let mut out = Vec::with_capacity(rounds * self.k);
        for _ in 0..rounds {
            out.extend(LatinHypercube.sample_n(space, self.k, rng));
        }
        out
    }
}

impl Sampler for DivideAndDiverge {
    fn sample<R: Rng + ?Sized>(&self, space: &ParamSpace, rng: &mut R) -> Configuration {
        UniformSampler.sample(space, rng)
    }

    fn sample_n<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        n: usize,
        rng: &mut R,
    ) -> Vec<Configuration> {
        let rounds = n.div_ceil(self.k);
        let mut v = self.sample_rounds(space, rounds, rng);
        v.truncate(n);
        v
    }
}

/// Draws a value for one parameter uniformly from its domain.
pub fn sample_value<R: Rng + ?Sized>(p: &ParamDef, rng: &mut R) -> ParamValue {
    match &p.kind {
        ParamKind::Int { lo, hi, step } => {
            let steps = (hi - lo) / step;
            ParamValue::Int(lo + rng.gen_range(0..=steps) * step)
        }
        ParamKind::Float { lo, hi, log } => {
            if *log {
                ParamValue::Float((rng.gen_range(lo.ln()..=hi.ln())).exp())
            } else {
                ParamValue::Float(rng.gen_range(*lo..=*hi))
            }
        }
        ParamKind::Bool => ParamValue::Bool(rng.gen()),
        ParamKind::Categorical { choices } => {
            ParamValue::Str(choices[rng.gen_range(0..choices.len())].clone())
        }
    }
}

/// Produces a neighbour of `cfg`: each parameter is perturbed with
/// probability `rate`; numeric parameters move by a Gaussian step of
/// relative size `scale` (fraction of the range), discrete parameters
/// re-sample among nearby values.
///
/// The result is clamped to the space; constraint violations fall back
/// to re-clamping the original configuration.
pub fn neighbor<R: Rng + ?Sized>(
    space: &ParamSpace,
    cfg: &Configuration,
    scale: f64,
    rate: f64,
    rng: &mut R,
) -> Configuration {
    let mut v = space.encode(cfg);
    for x in v.iter_mut() {
        if rng.gen::<f64>() < rate {
            // Box-Muller-free Gaussian-ish step: sum of 4 uniforms.
            let g: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum::<f64>() / 2.0;
            *x = (*x + g * scale * 2.0).clamp(0.0, 1.0);
        }
    }
    let cand = space.decode(&v);
    if space.validate(&cand).is_ok() {
        cand
    } else {
        space.clamp(cfg)
    }
}

/// Uniform crossover of two parent configurations (genetic search).
pub fn crossover<R: Rng + ?Sized>(
    space: &ParamSpace,
    a: &Configuration,
    b: &Configuration,
    rng: &mut R,
) -> Configuration {
    let cand: Configuration = space
        .params()
        .iter()
        .map(|p| {
            let src = if rng.gen::<bool>() { a } else { b };
            let v = src.get(&p.name).unwrap_or(&p.default).clone();
            (p.name.clone(), v)
        })
        .collect();
    let cand = space.clamp(&cand);
    if space.validate(&cand).is_ok() {
        cand
    } else {
        space.clamp(a)
    }
}

/// Mutates a configuration: each parameter is re-sampled uniformly with
/// probability `rate` (genetic search).
pub fn mutate<R: Rng + ?Sized>(
    space: &ParamSpace,
    cfg: &Configuration,
    rate: f64,
    rng: &mut R,
) -> Configuration {
    let cand: Configuration = space
        .params()
        .iter()
        .map(|p| {
            let v = if rng.gen::<f64>() < rate {
                sample_value(p, rng)
            } else {
                cfg.get(&p.name).unwrap_or(&p.default).clone()
            };
            (p.name.clone(), v)
        })
        .collect();
    if space.validate(&cand).is_ok() {
        cand
    } else {
        space.clamp(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(ParamDef::int("n", 1, 32, 4, ""))
            .with(ParamDef::float("f", 0.0, 1.0, 0.5, ""))
            .with(ParamDef::boolean("b", false, ""))
            .with(ParamDef::categorical("c", &["a", "b", "c"], "a", ""))
    }

    #[test]
    fn uniform_samples_are_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let cfg = UniformSampler.sample(&s, &mut rng);
            assert!(s.validate(&cfg).is_ok());
        }
    }

    #[test]
    fn uniform_is_deterministic_under_seed() {
        let s = space();
        let a = UniformSampler.sample_n(&s, 5, &mut StdRng::seed_from_u64(42));
        let b = UniformSampler.sample_n(&s, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn lhs_stratifies_each_dimension() {
        let s = ParamSpace::new().with(ParamDef::float("f", 0.0, 1.0, 0.5, ""));
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10;
        let samples = LatinHypercube.sample_n(&s, n, &mut rng);
        let mut strata: Vec<usize> = samples
            .iter()
            .map(|c| ((c.float("f") * n as f64).floor() as usize).min(n - 1))
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..n).collect::<Vec<_>>(), "each stratum hit once");
    }

    #[test]
    fn dds_produces_requested_count() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(5);
        let dds = DivideAndDiverge::new(7);
        assert_eq!(dds.sample_n(&s, 20, &mut rng).len(), 20);
        assert_eq!(dds.sample_rounds(&s, 3, &mut rng).len(), 21);
    }

    #[test]
    fn neighbor_stays_valid_and_moves_little() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(9);
        let base = s.default_configuration();
        for _ in 0..50 {
            let n = neighbor(&s, &base, 0.05, 1.0, &mut rng);
            assert!(s.validate(&n).is_ok());
            // Small-scale moves keep the integer parameter near its default.
            assert!((n.int("n") - base.int("n")).abs() <= 8);
        }
    }

    #[test]
    fn crossover_mixes_parents() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let a = s.default_configuration().with("n", 1i64);
        let b = s.default_configuration().with("n", 32i64);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..50 {
            let c = crossover(&s, &a, &b, &mut rng);
            assert!(s.validate(&c).is_ok());
            seen_a |= c.int("n") == 1;
            seen_b |= c.int("n") == 32;
        }
        assert!(
            seen_a && seen_b,
            "crossover should draw genes from both parents"
        );
    }

    #[test]
    fn mutate_zero_rate_is_identity() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(13);
        let base = UniformSampler.sample(&s, &mut rng);
        let m = mutate(&s, &base, 0.0, &mut rng);
        assert_eq!(m, base);
    }

    #[test]
    fn mutate_full_rate_changes_something() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(17);
        let base = s.default_configuration();
        let mut changed = false;
        for _ in 0..20 {
            if mutate(&s, &base, 1.0, &mut rng) != base {
                changed = true;
                break;
            }
        }
        assert!(changed);
    }

    #[test]
    fn constrained_space_samples_satisfy_constraint() {
        use crate::space::Constraint;
        let s = space().with_constraint(Constraint::new("n even-ish", |c| c.int("n") != 13));
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let cfg = UniformSampler.sample(&s, &mut rng);
            assert_ne!(cfg.int("n"), 13);
        }
    }
}
