//! Encoding configurations as normalized feature vectors.
//!
//! Every parameter maps to exactly one dimension in `[0, 1]`:
//!
//! * integer/float ranges scale linearly (or logarithmically when the
//!   parameter was declared with [`ParamDef::log_float`]);
//! * booleans map to `{0, 1}`;
//! * categoricals map to their choice index scaled to `[0, 1]` (ordinal
//!   encoding — adequate for tree models and for Matérn-kernel GPs over
//!   the small categorical domains used here).
//!
//! Decoding rounds to the nearest admissible value, so
//! `decode(encode(cfg)) == clamp(cfg)` for any valid `cfg`.
//!
//! [`ParamDef::log_float`]: crate::param::ParamDef::log_float

use crate::config::Configuration;
use crate::param::{ParamKind, ParamValue};
use crate::space::ParamSpace;

impl ParamSpace {
    /// Encodes `cfg` into a `len()`-dimensional vector in `[0, 1]^d`.
    ///
    /// Missing parameters encode as their default; out-of-range values
    /// are clamped.
    pub fn encode(&self, cfg: &Configuration) -> Vec<f64> {
        self.params()
            .iter()
            .map(|p| {
                let v = cfg.get(&p.name).unwrap_or(&p.default);
                encode_value(&p.kind, v)
            })
            .collect()
    }

    /// Decodes a feature vector into a valid configuration, rounding each
    /// coordinate to the nearest admissible value. Coordinates outside
    /// `[0, 1]` are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from [`ParamSpace::len`].
    pub fn decode(&self, v: &[f64]) -> Configuration {
        assert_eq!(
            v.len(),
            self.len(),
            "feature vector has wrong dimension: {} != {}",
            v.len(),
            self.len()
        );
        self.params()
            .iter()
            .zip(v)
            .map(|(p, &x)| (p.name.clone(), decode_value(&p.kind, x.clamp(0.0, 1.0))))
            .collect()
    }
}

fn encode_value(kind: &ParamKind, v: &ParamValue) -> f64 {
    match kind {
        ParamKind::Int { lo, hi, .. } => {
            if hi == lo {
                return 0.0;
            }
            let x = v.as_int().unwrap_or(*lo).clamp(*lo, *hi);
            (x - lo) as f64 / (hi - lo) as f64
        }
        ParamKind::Float { lo, hi, log } => {
            let x = v.as_float().unwrap_or(*lo).clamp(*lo, *hi);
            if *log {
                let (llo, lhi) = (lo.ln(), hi.ln());
                if lhi == llo {
                    0.0
                } else {
                    (x.ln() - llo) / (lhi - llo)
                }
            } else if hi == lo {
                0.0
            } else {
                (x - lo) / (hi - lo)
            }
        }
        ParamKind::Bool => {
            if v.as_bool().unwrap_or(false) {
                1.0
            } else {
                0.0
            }
        }
        ParamKind::Categorical { choices } => {
            if choices.len() <= 1 {
                return 0.0;
            }
            let idx = v
                .as_str()
                .and_then(|s| choices.iter().position(|c| c == s))
                .unwrap_or(0);
            idx as f64 / (choices.len() - 1) as f64
        }
    }
}

fn decode_value(kind: &ParamKind, x: f64) -> ParamValue {
    match kind {
        ParamKind::Int { lo, hi, step } => {
            let raw = *lo as f64 + x * (hi - lo) as f64;
            let steps = ((raw - *lo as f64) / *step as f64).round() as i64;
            let v = (lo + steps * step).clamp(*lo, *hi);
            ParamValue::Int(v)
        }
        ParamKind::Float { lo, hi, log } => {
            let v = if *log {
                (lo.ln() + x * (hi.ln() - lo.ln())).exp()
            } else {
                lo + x * (hi - lo)
            };
            ParamValue::Float(v.clamp(*lo, *hi))
        }
        ParamKind::Bool => ParamValue::Bool(x >= 0.5),
        ParamKind::Categorical { choices } => {
            let idx = if choices.len() <= 1 {
                0
            } else {
                (x * (choices.len() - 1) as f64).round() as usize
            };
            ParamValue::Str(choices[idx.min(choices.len() - 1)].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::param::ParamDef;
    use crate::space::ParamSpace;
    use crate::Configuration;

    fn space() -> ParamSpace {
        ParamSpace::new()
            .with(ParamDef::int("n", 1, 9, 5, ""))
            .with(ParamDef::float("f", 0.0, 2.0, 1.0, ""))
            .with(ParamDef::log_float("g", 1.0, 100.0, 10.0, ""))
            .with(ParamDef::boolean("b", false, ""))
            .with(ParamDef::categorical("c", &["a", "b", "c"], "a", ""))
    }

    #[test]
    fn roundtrip_exact_for_valid_config() {
        let s = space();
        let cfg = Configuration::new()
            .with("n", 7i64)
            .with("f", 1.5)
            .with("g", 10.0)
            .with("b", true)
            .with("c", "b");
        let v = s.encode(&cfg);
        let back = s.decode(&v);
        assert_eq!(back.int("n"), 7);
        assert!((back.float("f") - 1.5).abs() < 1e-9);
        assert!((back.float("g") - 10.0).abs() < 1e-6);
        assert!(back.bool("b"));
        assert_eq!(back.str("c"), "b");
    }

    #[test]
    fn encode_is_unit_interval() {
        let s = space();
        let v = s.encode(&s.default_configuration());
        assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
        assert_eq!(v.len(), s.len());
    }

    #[test]
    fn endpoints_encode_to_0_and_1() {
        let s = ParamSpace::new().with(ParamDef::int("n", 2, 10, 2, ""));
        assert_eq!(s.encode(&Configuration::new().with("n", 2i64))[0], 0.0);
        assert_eq!(s.encode(&Configuration::new().with("n", 10i64))[0], 1.0);
    }

    #[test]
    fn decode_clamps_outside_unit() {
        let s = ParamSpace::new().with(ParamDef::float("f", 0.0, 1.0, 0.5, ""));
        let cfg = s.decode(&[7.5]);
        assert_eq!(cfg.float("f"), 1.0);
        let cfg = s.decode(&[-2.0]);
        assert_eq!(cfg.float("f"), 0.0);
    }

    #[test]
    fn log_param_decodes_geometrically() {
        let s = ParamSpace::new().with(ParamDef::log_float("g", 1.0, 100.0, 1.0, ""));
        let mid = s.decode(&[0.5]).float("g");
        assert!(
            (mid - 10.0).abs() < 1e-6,
            "log midpoint should be 10, got {mid}"
        );
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn decode_rejects_wrong_dim() {
        let s = space();
        let _ = s.decode(&[0.0]);
    }

    #[test]
    fn missing_param_encodes_default() {
        let s = space();
        let v = s.encode(&Configuration::new());
        let d = s.encode(&s.default_configuration());
        assert_eq!(v, d);
    }
}
