//! Typed definitions of individual tunable parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// A concrete value assigned to a parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Integer-valued parameter (e.g. executor count).
    Int(i64),
    /// Continuous parameter (e.g. memory fraction).
    Float(f64),
    /// Boolean switch (e.g. shuffle compression).
    Bool(bool),
    /// Categorical choice (e.g. serializer name).
    Str(String),
}

impl ParamValue {
    /// Returns the integer payload, if this is an [`ParamValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`ParamValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`ParamValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// A short label for the contained kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "bool",
            ParamValue::Str(_) => "categorical",
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// The domain of a parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Inclusive integer range with an optional step (`step >= 1`).
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Step between admissible values; 1 admits every integer.
        step: i64,
    },
    /// Continuous range. When `log` is set, sampling and encoding are
    /// performed in log-space (suitable for scale-like parameters).
    Float {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
        /// Sample/encode in log-space.
        log: bool,
    },
    /// Boolean switch.
    Bool,
    /// A finite set of named choices.
    Categorical {
        /// Admissible choices, in canonical order.
        choices: Vec<String>,
    },
}

impl ParamKind {
    /// Number of admissible values for discrete kinds; `None` for floats.
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            ParamKind::Int { lo, hi, step } => Some(((hi - lo) / step + 1) as u64),
            ParamKind::Float { .. } => None,
            ParamKind::Bool => Some(2),
            ParamKind::Categorical { choices } => Some(choices.len() as u64),
        }
    }
}

/// The definition of a single tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Unique name within a [`crate::ParamSpace`] (dotted Spark-style names).
    pub name: String,
    /// The parameter's domain.
    pub kind: ParamKind,
    /// Default value (what an untuned deployment would use).
    pub default: ParamValue,
    /// One-line human description.
    pub description: String,
}

impl ParamDef {
    /// Creates an integer-range parameter.
    pub fn int(name: &str, lo: i64, hi: i64, default: i64, description: &str) -> Self {
        assert!(lo <= hi, "int param `{name}`: lo > hi");
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Int { lo, hi, step: 1 },
            default: ParamValue::Int(default),
            description: description.to_owned(),
        }
    }

    /// Creates an integer-range parameter with a step.
    pub fn int_step(
        name: &str,
        lo: i64,
        hi: i64,
        step: i64,
        default: i64,
        description: &str,
    ) -> Self {
        assert!(lo <= hi && step >= 1, "bad int-step param `{name}`");
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Int { lo, hi, step },
            default: ParamValue::Int(default),
            description: description.to_owned(),
        }
    }

    /// Creates a continuous parameter.
    pub fn float(name: &str, lo: f64, hi: f64, default: f64, description: &str) -> Self {
        assert!(lo <= hi, "float param `{name}`: lo > hi");
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Float { lo, hi, log: false },
            default: ParamValue::Float(default),
            description: description.to_owned(),
        }
    }

    /// Creates a continuous parameter sampled in log-space.
    pub fn log_float(name: &str, lo: f64, hi: f64, default: f64, description: &str) -> Self {
        assert!(0.0 < lo && lo <= hi, "log-float param `{name}`: bad range");
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Float { lo, hi, log: true },
            default: ParamValue::Float(default),
            description: description.to_owned(),
        }
    }

    /// Creates a boolean parameter.
    pub fn boolean(name: &str, default: bool, description: &str) -> Self {
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Bool,
            default: ParamValue::Bool(default),
            description: description.to_owned(),
        }
    }

    /// Creates a categorical parameter. The default must be one of the
    /// choices.
    pub fn categorical(name: &str, choices: &[&str], default: &str, description: &str) -> Self {
        assert!(
            choices.contains(&default),
            "categorical param `{name}`: default not in choices"
        );
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Categorical {
                choices: choices.iter().map(|c| (*c).to_owned()).collect(),
            },
            default: ParamValue::Str(default.to_owned()),
            description: description.to_owned(),
        }
    }

    /// Checks that `value` is admissible for this parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::TypeMismatch`] when the value has the wrong
    /// kind and [`ConfigError::OutOfRange`] when it is outside the domain.
    pub fn check(&self, value: &ParamValue) -> Result<(), ConfigError> {
        match (&self.kind, value) {
            (ParamKind::Int { lo, hi, step }, ParamValue::Int(v)) => {
                if v < lo || v > hi || (v - lo) % step != 0 {
                    Err(ConfigError::OutOfRange {
                        param: self.name.clone(),
                        value: v.to_string(),
                    })
                } else {
                    Ok(())
                }
            }
            (ParamKind::Float { lo, hi, .. }, ParamValue::Float(v)) => {
                if !v.is_finite() || v < lo || v > hi {
                    Err(ConfigError::OutOfRange {
                        param: self.name.clone(),
                        value: v.to_string(),
                    })
                } else {
                    Ok(())
                }
            }
            (ParamKind::Bool, ParamValue::Bool(_)) => Ok(()),
            (ParamKind::Categorical { choices }, ParamValue::Str(v)) => {
                if choices.iter().any(|c| c == v) {
                    Ok(())
                } else {
                    Err(ConfigError::OutOfRange {
                        param: self.name.clone(),
                        value: v.clone(),
                    })
                }
            }
            (kind, _) => Err(ConfigError::TypeMismatch {
                param: self.name.clone(),
                expected: match kind {
                    ParamKind::Int { .. } => "int",
                    ParamKind::Float { .. } => "float",
                    ParamKind::Bool => "bool",
                    ParamKind::Categorical { .. } => "categorical",
                },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_check_accepts_in_range() {
        let p = ParamDef::int("x", 1, 10, 5, "test");
        assert!(p.check(&ParamValue::Int(1)).is_ok());
        assert!(p.check(&ParamValue::Int(10)).is_ok());
        assert!(p.check(&ParamValue::Int(0)).is_err());
        assert!(p.check(&ParamValue::Int(11)).is_err());
    }

    #[test]
    fn int_step_respects_step() {
        let p = ParamDef::int_step("x", 0, 100, 10, 0, "test");
        assert!(p.check(&ParamValue::Int(30)).is_ok());
        assert!(p.check(&ParamValue::Int(35)).is_err());
    }

    #[test]
    fn float_check_rejects_nan() {
        let p = ParamDef::float("f", 0.0, 1.0, 0.5, "test");
        assert!(p.check(&ParamValue::Float(f64::NAN)).is_err());
        assert!(p.check(&ParamValue::Float(0.5)).is_ok());
    }

    #[test]
    fn categorical_check() {
        let p = ParamDef::categorical("c", &["a", "b"], "a", "test");
        assert!(p.check(&ParamValue::Str("b".into())).is_ok());
        assert!(p.check(&ParamValue::Str("z".into())).is_err());
    }

    #[test]
    fn type_mismatch_is_reported() {
        let p = ParamDef::boolean("b", true, "test");
        let err = p.check(&ParamValue::Int(1)).unwrap_err();
        assert!(matches!(err, ConfigError::TypeMismatch { .. }));
    }

    #[test]
    fn cardinality() {
        assert_eq!(
            ParamKind::Int {
                lo: 1,
                hi: 10,
                step: 1
            }
            .cardinality(),
            Some(10)
        );
        assert_eq!(
            ParamKind::Int {
                lo: 0,
                hi: 100,
                step: 10
            }
            .cardinality(),
            Some(11)
        );
        assert_eq!(ParamKind::Bool.cardinality(), Some(2));
        assert_eq!(
            ParamKind::Float {
                lo: 0.0,
                hi: 1.0,
                log: false
            }
            .cardinality(),
            None
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(ParamValue::Int(3).as_int(), Some(3));
        assert_eq!(ParamValue::Int(3).as_float(), Some(3.0));
        assert_eq!(ParamValue::Float(0.5).as_float(), Some(0.5));
        assert_eq!(ParamValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ParamValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(ParamValue::Bool(true).as_int(), None);
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            ParamValue::Int(1),
            ParamValue::Float(1.5),
            ParamValue::Bool(false),
            ParamValue::Str("kryo".into()),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
