//! Error types for configuration-space operations.

use std::error::Error;
use std::fmt;

/// Errors raised when building or validating configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The named parameter does not exist in the space.
    UnknownParam(String),
    /// A value of the wrong kind was supplied for a parameter.
    TypeMismatch {
        /// Parameter name.
        param: String,
        /// Expected kind, e.g. `"int"`.
        expected: &'static str,
    },
    /// A value falls outside the parameter's declared range/choices.
    OutOfRange {
        /// Parameter name.
        param: String,
        /// Human-readable rendering of the offending value.
        value: String,
    },
    /// A cross-parameter constraint was violated.
    ConstraintViolated(String),
    /// The configuration is missing a parameter required by the space.
    MissingParam(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownParam(p) => write!(f, "unknown parameter `{p}`"),
            ConfigError::TypeMismatch { param, expected } => {
                write!(f, "parameter `{param}` expects a {expected} value")
            }
            ConfigError::OutOfRange { param, value } => {
                write!(f, "value {value} is out of range for parameter `{param}`")
            }
            ConfigError::ConstraintViolated(c) => write!(f, "constraint `{c}` violated"),
            ConfigError::MissingParam(p) => write!(f, "missing required parameter `{p}`"),
        }
    }
}

impl Error for ConfigError {}
