//! The Spark configuration-parameter catalog.
//!
//! Mirrors the subset of `spark.*` knobs that published Spark-tuning
//! systems optimize (DAC tunes 41, BestConfig 30, Wang et al. 16; the
//! paper's §III-B lists the categories). We expose 26 parameters across
//! processing, memory, shuffle, serialization, compression, scheduling
//! and fault-tolerance, which is enough to recreate the paper's
//! "search space > 10^40" regime while keeping every knob behaviourally
//! meaningful inside the simulator.

use crate::param::ParamDef;
use crate::space::{Constraint, ParamSpace};

/// Canonical names of the Spark parameters, grouped for readability.
pub mod names {
    /// `spark.executor.instances`
    pub const EXECUTOR_INSTANCES: &str = "spark.executor.instances";
    /// `spark.executor.cores`
    pub const EXECUTOR_CORES: &str = "spark.executor.cores";
    /// `spark.executor.memory` (MiB)
    pub const EXECUTOR_MEMORY_MB: &str = "spark.executor.memory.mb";
    /// `spark.driver.memory` (MiB)
    pub const DRIVER_MEMORY_MB: &str = "spark.driver.memory.mb";
    /// `spark.memory.fraction`
    pub const MEMORY_FRACTION: &str = "spark.memory.fraction";
    /// `spark.memory.storageFraction`
    pub const MEMORY_STORAGE_FRACTION: &str = "spark.memory.storageFraction";
    /// `spark.default.parallelism`
    pub const DEFAULT_PARALLELISM: &str = "spark.default.parallelism";
    /// `spark.sql.shuffle.partitions`
    pub const SHUFFLE_PARTITIONS: &str = "spark.sql.shuffle.partitions";
    /// `spark.shuffle.compress`
    pub const SHUFFLE_COMPRESS: &str = "spark.shuffle.compress";
    /// `spark.shuffle.spill.compress`
    pub const SHUFFLE_SPILL_COMPRESS: &str = "spark.shuffle.spill.compress";
    /// `spark.shuffle.file.buffer` (KiB)
    pub const SHUFFLE_FILE_BUFFER_KB: &str = "spark.shuffle.file.buffer.kb";
    /// `spark.reducer.maxSizeInFlight` (MiB)
    pub const REDUCER_MAX_SIZE_IN_FLIGHT_MB: &str = "spark.reducer.maxSizeInFlight.mb";
    /// `spark.shuffle.sort.bypassMergeThreshold`
    pub const SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD: &str = "spark.shuffle.sort.bypassMergeThreshold";
    /// `spark.rdd.compress`
    pub const RDD_COMPRESS: &str = "spark.rdd.compress";
    /// `spark.serializer`
    pub const SERIALIZER: &str = "spark.serializer";
    /// `spark.kryoserializer.buffer.max` (MiB)
    pub const KRYO_BUFFER_MAX_MB: &str = "spark.kryoserializer.buffer.max.mb";
    /// `spark.broadcast.blockSize` (MiB)
    pub const BROADCAST_BLOCK_SIZE_MB: &str = "spark.broadcast.blockSize.mb";
    /// Storage level used for cached RDDs.
    pub const STORAGE_LEVEL: &str = "spark.storage.level";
    /// `spark.locality.wait` (ms)
    pub const LOCALITY_WAIT_MS: &str = "spark.locality.wait.ms";
    /// `spark.speculation`
    pub const SPECULATION: &str = "spark.speculation";
    /// `spark.speculation.quantile`
    pub const SPECULATION_QUANTILE: &str = "spark.speculation.quantile";
    /// `spark.speculation.multiplier`
    pub const SPECULATION_MULTIPLIER: &str = "spark.speculation.multiplier";
    /// `spark.io.compression.codec`
    pub const IO_COMPRESSION_CODEC: &str = "spark.io.compression.codec";
    /// `spark.network.timeout` (s)
    pub const NETWORK_TIMEOUT_S: &str = "spark.network.timeout.s";
    /// `spark.dynamicAllocation.enabled`
    pub const DYNAMIC_ALLOCATION: &str = "spark.dynamicAllocation.enabled";
    /// `spark.scheduler.mode`
    pub const SCHEDULER_MODE: &str = "spark.scheduler.mode";
}

/// Builds the Spark parameter space used throughout the workspace.
///
/// Defaults follow Apache Spark's shipped defaults (the "untuned"
/// deployment the paper's 89× claim is measured against).
pub fn spark_space() -> ParamSpace {
    use names::*;
    ParamSpace::new()
        .with(ParamDef::int(
            EXECUTOR_INSTANCES,
            1,
            48,
            2,
            "number of executor processes across the cluster",
        ))
        .with(ParamDef::int(
            EXECUTOR_CORES,
            1,
            16,
            1,
            "task slots per executor",
        ))
        .with(ParamDef::int_step(
            EXECUTOR_MEMORY_MB,
            512,
            32768,
            256,
            1024,
            "heap per executor (MiB)",
        ))
        .with(ParamDef::int_step(
            DRIVER_MEMORY_MB,
            512,
            8192,
            256,
            1024,
            "heap for the driver (MiB)",
        ))
        .with(ParamDef::float(
            MEMORY_FRACTION,
            0.3,
            0.9,
            0.6,
            "fraction of heap for execution+storage",
        ))
        .with(ParamDef::float(
            MEMORY_STORAGE_FRACTION,
            0.1,
            0.9,
            0.5,
            "fraction of unified memory immune to eviction (cached RDDs)",
        ))
        .with(ParamDef::int(
            DEFAULT_PARALLELISM,
            4,
            1024,
            16,
            "default number of RDD partitions",
        ))
        .with(ParamDef::int(
            SHUFFLE_PARTITIONS,
            4,
            1024,
            200,
            "partitions of shuffled data",
        ))
        .with(ParamDef::boolean(
            SHUFFLE_COMPRESS,
            true,
            "compress map outputs",
        ))
        .with(ParamDef::boolean(
            SHUFFLE_SPILL_COMPRESS,
            true,
            "compress data spilled during shuffles",
        ))
        .with(ParamDef::int_step(
            SHUFFLE_FILE_BUFFER_KB,
            16,
            1024,
            16,
            32,
            "in-memory buffer per shuffle file output stream (KiB)",
        ))
        .with(ParamDef::int(
            REDUCER_MAX_SIZE_IN_FLIGHT_MB,
            8,
            256,
            48,
            "max shuffle data fetched concurrently per reducer (MiB)",
        ))
        .with(ParamDef::int(
            SHUFFLE_SORT_BYPASS_MERGE_THRESHOLD,
            0,
            1000,
            200,
            "below this many reduce partitions, skip merge-sort",
        ))
        .with(ParamDef::boolean(
            RDD_COMPRESS,
            false,
            "compress serialized cached RDD partitions",
        ))
        .with(ParamDef::categorical(
            SERIALIZER,
            &["java", "kryo"],
            "java",
            "object serialization library",
        ))
        .with(ParamDef::int(
            KRYO_BUFFER_MAX_MB,
            8,
            128,
            64,
            "max kryo serialization buffer (MiB)",
        ))
        .with(ParamDef::int(
            BROADCAST_BLOCK_SIZE_MB,
            1,
            128,
            4,
            "block size for TorrentBroadcast (MiB)",
        ))
        .with(ParamDef::categorical(
            STORAGE_LEVEL,
            &["MEMORY_ONLY", "MEMORY_AND_DISK", "DISK_ONLY"],
            "MEMORY_ONLY",
            "storage level for cached RDDs",
        ))
        .with(ParamDef::int_step(
            LOCALITY_WAIT_MS,
            0,
            10000,
            500,
            3000,
            "wait before giving up on data-local scheduling (ms)",
        ))
        .with(ParamDef::boolean(
            SPECULATION,
            false,
            "re-launch slow tasks speculatively",
        ))
        .with(ParamDef::float(
            SPECULATION_QUANTILE,
            0.5,
            0.95,
            0.75,
            "fraction of tasks that must finish before speculating",
        ))
        .with(ParamDef::float(
            SPECULATION_MULTIPLIER,
            1.1,
            3.0,
            1.5,
            "how many times slower than median a task must be",
        ))
        .with(ParamDef::categorical(
            IO_COMPRESSION_CODEC,
            &["lz4", "snappy", "zstd"],
            "lz4",
            "codec for shuffle/RDD/broadcast compression",
        ))
        .with(ParamDef::int(
            NETWORK_TIMEOUT_S,
            30,
            600,
            120,
            "default network timeout (s)",
        ))
        .with(ParamDef::boolean(
            DYNAMIC_ALLOCATION,
            false,
            "scale executor count with load",
        ))
        .with(ParamDef::categorical(
            SCHEDULER_MODE,
            &["FIFO", "FAIR"],
            "FIFO",
            "intra-application scheduling policy",
        ))
        .with_constraint(Constraint::new(
            "speculation.quantile >= 0.5 when speculation enabled",
            |c| !c.bool(names::SPECULATION) || c.float(names::SPECULATION_QUANTILE) >= 0.5,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{Sampler, UniformSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn space_has_expected_size() {
        let s = spark_space();
        assert_eq!(s.len(), 26);
    }

    #[test]
    fn defaults_match_spark_shipping_defaults() {
        let s = spark_space();
        let d = s.default_configuration();
        assert_eq!(d.int(names::EXECUTOR_CORES), 1);
        assert_eq!(d.int(names::SHUFFLE_PARTITIONS), 200);
        assert_eq!(d.str(names::SERIALIZER), "java");
        assert!((d.float(names::MEMORY_FRACTION) - 0.6).abs() < 1e-12);
        assert!(!d.bool(names::SPECULATION));
        assert!(s.validate(&d).is_ok());
    }

    #[test]
    fn search_space_exceeds_10_to_the_40() {
        // §III-B: the search space to tune 30 parameters exceeds 1e40.
        // Our 26-parameter space (floats counted at a coarse 100 levels)
        // must land in the same regime.
        let s = spark_space();
        let log10: f64 = s
            .params()
            .iter()
            .map(|p| p.kind.cardinality().map_or(2.0, |c| (c as f64).log10()))
            .sum();
        assert!(log10 > 30.0, "log10 cardinality = {log10}");
    }

    #[test]
    fn random_samples_validate() {
        let s = spark_space();
        let mut rng = StdRng::seed_from_u64(7);
        for cfg in UniformSampler.sample_n(&s, 50, &mut rng) {
            assert!(s.validate(&cfg).is_ok());
        }
    }
}
