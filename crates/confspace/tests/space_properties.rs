//! Property tests over *arbitrary* parameter spaces (not just the
//! built-in catalogs): sampling, clamping and encoding must uphold
//! their contracts for any space a downstream user could define.

use confspace::{
    Configuration, DivideAndDiverge, LatinHypercube, ParamDef, ParamSpace, Sampler, UniformSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated parameter definition.
fn arb_param(idx: usize) -> impl Strategy<Value = ParamDef> {
    prop_oneof![
        // Int range with a sane width.
        (0i64..100, 1i64..200, 1i64..8).prop_map(move |(lo, width, step)| {
            ParamDef::int_step(
                &format!("p{idx}"),
                lo,
                lo + width * step,
                step,
                lo,
                "generated",
            )
        }),
        // Float range.
        (0.0f64..10.0, 0.1f64..50.0).prop_map(move |(lo, width)| {
            ParamDef::float(&format!("p{idx}"), lo, lo + width, lo, "generated")
        }),
        Just(()).prop_map(move |()| ParamDef::boolean(&format!("p{idx}"), false, "generated")),
        (2usize..5).prop_map(move |n| {
            let choices: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
            let refs: Vec<&str> = choices.iter().map(String::as_str).collect();
            ParamDef::categorical(&format!("p{idx}"), &refs, refs[0], "generated")
        }),
    ]
}

fn arb_space() -> impl Strategy<Value = ParamSpace> {
    (1usize..6).prop_flat_map(|n| {
        let params: Vec<_> = (0..n).map(arb_param).collect();
        params.prop_map(|defs| {
            let mut space = ParamSpace::new();
            for d in defs {
                space.add(d);
            }
            space
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform samples of any space validate against that space.
    #[test]
    fn uniform_samples_validate(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let cfg = UniformSampler.sample(&space, &mut rng);
            prop_assert!(space.validate(&cfg).is_ok());
        }
    }

    /// LHS and divide-and-diverge batches validate too.
    #[test]
    fn batch_samplers_validate(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for cfg in LatinHypercube.sample_n(&space, 7, &mut rng) {
            prop_assert!(space.validate(&cfg).is_ok());
        }
        for cfg in DivideAndDiverge::new(4).sample_n(&space, 6, &mut rng) {
            prop_assert!(space.validate(&cfg).is_ok());
        }
    }

    /// Clamping an arbitrary (even garbage) configuration yields a
    /// valid one for constraint-free spaces.
    #[test]
    fn clamp_always_repairs(space in arb_space(), junk in any::<i64>()) {
        let cfg = Configuration::new()
            .with("nonexistent", junk)
            .with("p0", junk); // possibly wrong type: clamp falls back to default
        let fixed = space.clamp(&cfg);
        prop_assert!(space.validate(&fixed).is_ok());
    }

    /// Encoding is always `len()`-dimensional and within [0, 1].
    #[test]
    fn encoding_is_unit_box(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = UniformSampler.sample(&space, &mut rng);
        let v = space.encode(&cfg);
        prop_assert_eq!(v.len(), space.len());
        prop_assert!(v.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    /// decode(encode(·)) is idempotent: decoding twice changes nothing.
    #[test]
    fn decode_is_idempotent(space in arb_space(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = UniformSampler.sample(&space, &mut rng);
        let once = space.decode(&space.encode(&cfg));
        let twice = space.decode(&space.encode(&once));
        prop_assert_eq!(once, twice);
    }

    /// The default configuration of any generated space validates.
    #[test]
    fn defaults_validate(space in arb_space()) {
        prop_assert!(space.validate(&space.default_configuration()).is_ok());
    }
}
