//! §V-A: models that can transfer their tuning knowledge must expose
//! *which* parameters matter. This example tunes two workloads with
//! different bottlenecks, then extracts parameter-importance rankings
//! with the additive-GP decomposition (Duvenaud et al.) and
//! random-forest permutation importance — showing the rankings differ
//! between workloads, which is exactly the knowledge worth
//! transferring.
//!
//! Run with: `cargo run --release --example parameter_importance`

use rand::rngs::StdRng;
use rand::SeedableRng;

use seamless_tuning::core::{additive_effects, permutation_importance};
use seamless_tuning::prelude::*;

fn history_for(workload: &dyn Workload, seed: u64) -> Vec<Observation> {
    let mut objective = DiscObjective::new(
        ClusterSpec::table1_testbed(),
        workload.job(DataScale::Small),
        &SimEnvironment::dedicated(seed),
    );
    let mut session = TuningSession::new(TunerKind::Lhs, seed);
    session.run(&mut objective, 60).history
}

fn main() {
    let space = spark_space();
    for w in [
        Box::new(Pagerank::new()) as Box<dyn Workload>,
        Box::new(Wordcount::new()),
    ] {
        println!("== {} ==", w.name());
        let history = history_for(w.as_ref(), 7);

        let additive = additive_effects(&space, &history);
        println!("  additive-GP top-5 parameters:");
        for e in additive.effects.iter().take(5) {
            println!("    {:<42} leverage {:.3}", e.name, e.leverage);
        }

        let mut rng = StdRng::seed_from_u64(11);
        let forest = permutation_importance(&space, &history, &mut rng);
        println!("  forest permutation-importance top-5:");
        for e in forest.effects.iter().take(5) {
            println!("    {:<42} importance {:.3}", e.name, e.leverage);
        }

        // Show one effect curve: how the top parameter shapes runtime.
        let top = &additive.effects[0];
        println!(
            "  effect curve of `{}` (encoded value -> ln runtime):",
            top.name
        );
        for (x, m) in &top.curve {
            let bar = "#".repeat(
                ((m - top.curve.iter().map(|c| c.1).fold(f64::INFINITY, f64::min)) * 30.0
                    / top.leverage.max(1e-9)) as usize,
            );
            println!("    {x:.2}  {m:7.3}  {bar}");
        }
        println!();
    }
}
