//! Stage 1 of Fig. 1 in isolation: pick the instance family, size and
//! node count for a workload, comparing CherryPick-style BO, a
//! PARIS-style random forest, Ernest's analytic model, and random
//! search — then show the runtime-vs-cost trade-off of the winners.
//!
//! Run with: `cargo run --release --example cloud_selection`

use seamless_tuning::prelude::*;

fn main() {
    let job = Terasort::new().job(DataScale::Small);
    let disc = SeamlessTuner::house_default();
    println!("Selecting a cloud configuration for {}\n", job.name);

    let budget = 15;
    println!(
        "{:<12} {:>14} {:>9} {:>12}",
        "strategy", "cluster", "best(s)", "run cost($)"
    );
    for kind in [
        TunerKind::Random,
        TunerKind::BayesOpt,
        TunerKind::RandomForest,
        TunerKind::Ernest,
    ] {
        let mut objective =
            CloudObjective::new(job.clone(), disc.clone(), &SimEnvironment::dedicated(3));
        let mut session = TuningSession::new(kind, 11);
        let outcome = session.run(&mut objective, budget);
        let (cluster, cost) = outcome
            .best
            .as_ref()
            .map(|o| {
                let c = ClusterSpec::from_config(&o.config).expect("valid cloud config");
                (c.to_string(), o.cost_usd)
            })
            .unwrap_or_else(|| ("-".to_owned(), f64::NAN));
        println!(
            "{:<12} {:>14} {:>9.1} {:>12.3}",
            kind.label(),
            cluster,
            outcome.best_runtime_s(),
            cost
        );
    }

    // The §IV-D trade-off the user should be able to express: "results
    // fast no matter the cost" vs "cheap, I can wait".
    println!("\nruntime vs cost across the catalog (4 nodes, house-default Spark config):");
    println!(
        "{:<14} {:>10} {:>12}",
        "instance", "runtime(s)", "run cost($)"
    );
    let mut rows = Vec::new();
    for inst in simcluster::catalog::all_instances() {
        let cfg = cloud_space()
            .default_configuration()
            .with("cloud.instance.family", inst.family.as_str())
            .with("cloud.instance.size", inst.size.as_str())
            .with("cloud.node.count", 4i64);
        if cloud_space().validate(&cfg).is_err() {
            continue;
        }
        let mut objective =
            CloudObjective::new(job.clone(), disc.clone(), &SimEnvironment::dedicated(4));
        let obs = objective.evaluate(&cfg);
        if obs.is_ok() {
            rows.push((inst.name(), obs.runtime_s, obs.cost_usd));
        }
    }
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));
    for (name, runtime, cost) in rows {
        println!("{name:<14} {runtime:>10.1} {cost:>12.3}");
    }
}
