//! Provider-side scheduling: several tenants share one cluster, and
//! the provider compares FIFO against processor-sharing FAIR — then
//! uses What-If predictions to run shortest-job-first (§IV-D).
//!
//! Run with: `cargo run --release --example shared_cluster`

use rand::rngs::StdRng;
use rand::SeedableRng;

use seamless_tuning::core::{JobProfile, SeamlessTuner};
use seamless_tuning::prelude::*;
use seamless_tuning::simcluster::{run_shared, SharingPolicy, Submission};

fn main() {
    let cluster = ClusterSpec::table1_testbed();
    let cfg = SeamlessTuner::house_default();
    let sim = Simulator::dedicated();

    let submissions = vec![
        Submission {
            tenant: "nightly-etl".to_owned(),
            job: Pagerank::new().job(DataScale::Small),
            config: cfg.clone(),
        },
        Submission {
            tenant: "ad-hoc-query".to_owned(),
            job: SqlJoin::new().job(DataScale::Custom(1024.0)),
            config: cfg.clone(),
        },
        Submission {
            tenant: "report-wordcount".to_owned(),
            job: Wordcount::new().job(DataScale::Custom(768.0)),
            config: cfg.clone(),
        },
    ];

    for policy in [SharingPolicy::Fifo, SharingPolicy::Fair] {
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_shared(&cluster, &submissions, policy, &sim, &mut rng);
        println!(
            "{policy:?}: mean completion {:.1}s, makespan {:.1}s",
            out.mean_completion_s(),
            out.makespan_s
        );
        for j in &out.jobs {
            println!(
                "  {:<18} demand {:>6.1}s  done at {:>6.1}s",
                j.tenant, j.demand_s, j.completion_s
            );
        }
    }

    // The provider's predictability dividend: order the queue by
    // What-If-predicted demand (shortest first) before running FIFO.
    let env = SparkEnv::resolve(&cluster, &cfg).expect("house default fits");
    let mut predicted: Vec<(f64, Submission)> = submissions
        .iter()
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(11);
            let run = sim.run(&env, &s.job, &mut rng).expect("profiling run");
            let profile = JobProfile::from_run(&env, &run.metrics);
            (profile.predict(&env), s.clone())
        })
        .collect();
    predicted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let ordered: Vec<Submission> = predicted.into_iter().map(|(_, s)| s).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let out = run_shared(&cluster, &ordered, SharingPolicy::Fifo, &sim, &mut rng);
    println!(
        "predicted-SJF: mean completion {:.1}s, makespan {:.1}s",
        out.mean_completion_s(),
        out.makespan_s
    );
}
