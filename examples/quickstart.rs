//! Quickstart: tune a Spark workload on the paper's testbed with three
//! strategies and compare them against the default configuration.
//!
//! Run with: `cargo run --release --example quickstart`

use seamless_tuning::prelude::*;

fn main() {
    let cluster = ClusterSpec::table1_testbed();
    let job = Pagerank::new().job(DataScale::Small);
    println!("Tuning {} on {cluster}\n", job.name);

    // What an untuned deployment gets (Spark's shipped defaults).
    let mut probe = DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(1));
    let default_cfg = spark_space().default_configuration();
    let default_obs = probe.evaluate(&default_cfg);
    match &default_obs.failure {
        None => println!("default configuration: {:.1}s", default_obs.runtime_s),
        Some(f) => println!("default configuration: CRASHED ({f})"),
    }

    // Three tuning strategies, 25 executions each.
    for kind in [TunerKind::Random, TunerKind::HillClimb, TunerKind::BayesOpt] {
        let mut objective =
            DiscObjective::new(cluster.clone(), job.clone(), &SimEnvironment::dedicated(2));
        let mut session = TuningSession::new(kind, 42);
        let outcome = session.run(&mut objective, 25);
        println!(
            "{kind:<12} best {:>8.1}s after {} executions (tuning spent ${:.2})",
            outcome.best_runtime_s(),
            outcome.history.len(),
            outcome.total_cost_usd(),
        );
    }

    // Inspect the winning configuration.
    let mut objective = DiscObjective::new(cluster, job, &SimEnvironment::dedicated(2));
    let mut session = TuningSession::new(TunerKind::BayesOpt, 42);
    let outcome = session.run(&mut objective, 25);
    if let Some(best) = outcome.best_config() {
        println!("\nbest configuration found:");
        for (name, value) in best.iter() {
            println!("  {name} = {value}");
        }
    }
}
