//! The paper's vision end-to-end: a cloud provider operates the
//! seamless tuning service for multiple tenants. Later tenants with
//! similar workloads are tuned faster because the provider transfers
//! knowledge from its multi-tenant execution history (§IV-C, §V-B).
//!
//! Run with: `cargo run --release --example tuning_service`

use std::sync::Arc;

use seamless_tuning::prelude::*;

fn main() {
    let store = Arc::new(HistoryStore::new());
    let service = SeamlessTuner::new(
        Arc::clone(&store),
        SimEnvironment::shared(21),
        ServiceConfig {
            stage1_budget: 8,
            stage2_budget: 16,
            ..ServiceConfig::default()
        },
    );

    // Five tenants submit workloads over time. Tenants 3–5 run
    // variants similar to earlier submissions.
    let tenants: Vec<(&str, &str, Box<dyn Workload>)> = vec![
        ("alice", "nightly-pagerank", Box::new(Pagerank::new())),
        ("bob", "etl-wordcount", Box::new(Wordcount::new())),
        (
            "carol",
            "web-pagerank",
            Box::new(Pagerank::with_iterations(4)),
        ),
        (
            "dave",
            "log-wordcount",
            Box::new(Wordcount::with_combine_ratio(0.08)),
        ),
        (
            "erin",
            "citations-pagerank",
            Box::new(Pagerank::with_iterations(6)),
        ),
    ];

    println!(
        "{:<8} {:<20} {:>10} {:>9} {:>10} {:>9}",
        "tenant", "workload", "cluster", "best(s)", "tuning($)", "transfer"
    );
    for (i, (client, label, workload)) in tenants.into_iter().enumerate() {
        let job = workload.job(DataScale::Small);
        let outcome = service.tune(client, label, &job, 100 + i as u64);
        println!(
            "{:<8} {:<20} {:>10} {:>9.1} {:>10.2} {:>9}",
            client,
            label,
            outcome.cluster.to_string(),
            outcome.best_runtime_s,
            outcome.tuning_cost_usd(),
            if outcome.used_transfer { "yes" } else { "no" }
        );
    }

    println!(
        "\nprovider history now holds {} execution records across tenants",
        store.len()
    );

    // The provider can answer §IV-D questions: "how close is a tenant
    // to the best similar workload ever run here?"
    let snapshot = store.snapshot();
    if let Some(record) = snapshot.last() {
        if let Some(best) = store.best_similar_runtime(&record.signature, 10) {
            println!(
                "best runtime among workloads similar to {}'s last run: {:.1}s",
                record.client, best
            );
        }
    }
}
