//! The paper's §IV-B scenario: a recurring workload whose input keeps
//! growing (DS1 → DS2 → DS3). A managed execution detects the change
//! and re-tunes automatically; a static deployment keeps the stale
//! configuration.
//!
//! Run with: `cargo run --release --example evolving_input`

use seamless_tuning::prelude::*;

fn main() {
    let cluster = ClusterSpec::table1_testbed();
    let scales = [DataScale::Ds1, DataScale::Ds2, DataScale::Ds3];
    let env = SimEnvironment::dedicated(5);

    // Tune once at DS1.
    let mut obj = DiscObjective::new(cluster.clone(), Pagerank::new().job(DataScale::Ds1), &env);
    let mut session = TuningSession::new(TunerKind::BayesOpt, 9);
    let tuned_at_ds1 = session
        .run(&mut obj, 20)
        .best_config()
        .cloned()
        .expect("DS1 tuning found a working configuration");

    // Managed execution: starts from the DS1-tuned config and watches
    // for drift while the input evolves.
    let mut managed = ManagedWorkload::new(
        cluster.clone(),
        Pagerank::new().job(DataScale::Ds1),
        tuned_at_ds1.clone(),
        ServiceConfig {
            retune_budget: 12,
            ..ServiceConfig::default()
        },
        &env,
        77,
    );

    // Static deployment: same starting config, never re-tuned.
    let mut static_obj = DiscObjective::new(cluster, Pagerank::new().job(DataScale::Ds1), &env);

    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "scale", "managed(s)", "static(s)", "retuned?"
    );
    for scale in scales {
        managed.set_job(Pagerank::new().job(scale));
        static_obj.set_job(Pagerank::new().job(scale));
        let mut managed_total = 0.0;
        let mut static_total = 0.0;
        let mut retuned = false;
        let runs = 6;
        for _ in 0..runs {
            let (obs, spent) = managed.run_once();
            managed_total += obs.runtime_s;
            retuned |= spent > 0;
            static_total += static_obj.evaluate(&tuned_at_ds1).runtime_s;
        }
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>10}",
            scale.label(),
            managed_total / runs as f64,
            static_total / runs as f64,
            if retuned { "yes" } else { "no" }
        );
    }
    println!(
        "\nre-tunings triggered: {:?}",
        managed
            .retunings
            .iter()
            .map(|(reason, at)| format!("{reason:?}@run{at}"))
            .collect::<Vec<_>>()
    );
}
